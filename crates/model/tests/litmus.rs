//! Classic memory-model litmus tests, run against the checker itself: they
//! pin down that the model *finds* the bugs it claims to find (stale
//! relaxed reads, data races, deadlocks) and accepts the classic correct
//! protocols.

use msc_model::prims::{Atomic, Ordering, Prims, RawCell, SharedLock};
use msc_model::shim::{ModelCell, ModelLock, ModelPrims};
use msc_model::{check, model, Config, ViolationKind};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

type AU64 = <ModelPrims as Prims>::AU64;

/// Message passing with a Relaxed flag: the reader can observe the flag set
/// while still reading stale data. The checker must find the failing
/// schedule.
#[test]
fn mp_relaxed_flag_is_caught() {
    let res = check(Config::default(), || {
        let flag = Arc::new(AU64::new(0));
        let data = Arc::new(AU64::new(0));
        let t = {
            let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
            msc_model::thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, Ordering::Relaxed); // BUG: should be Release
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data after flag");
        }
        t.join();
    });
    let v = res.expect_err("relaxed-flag message passing must fail");
    assert!(
        matches!(v.kind, ViolationKind::Panic(ref m) if m.contains("stale data")),
        "unexpected violation: {v}"
    );
}

/// The same protocol with a proper Release/Acquire pair is fully verified.
#[test]
fn mp_acq_rel_is_verified() {
    let stats = model(|| {
        let flag = Arc::new(AU64::new(0));
        let data = Arc::new(AU64::new(0));
        let t = {
            let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
            msc_model::thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, Ordering::Release);
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    assert!(stats.complete, "exploration must exhaust: {stats:?}");
    assert!(
        stats.interleavings >= 2,
        "must explore real choice: {stats:?}"
    );
    assert_eq!(stats.truncated, 0);
}

/// Store buffering: with relaxed operations both loads may read the initial
/// zeroes — a outcome impossible under naive sequentially-consistent
/// interleaving. Pins that stale reads are genuinely exercised.
#[test]
fn store_buffering_reaches_both_zero() {
    let outcomes: Arc<Mutex<HashSet<(u64, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    let stats = model(move || {
        let x = Arc::new(AU64::new(0));
        let y = Arc::new(AU64::new(0));
        let t = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            msc_model::thread::spawn(move || {
                x.store(1, Ordering::Relaxed);
                y.load(Ordering::Relaxed)
            })
        };
        x.load(Ordering::Relaxed); // warm a choice point either way
        y.store(1, Ordering::Relaxed);
        let r1 = x.load(Ordering::Relaxed);
        let r0 = t.join();
        sink.lock().unwrap().insert((r0, r1));
    });
    assert!(stats.complete);
    let seen = outcomes.lock().unwrap();
    assert!(
        seen.contains(&(0, 0)),
        "relaxed store buffering must reach (0,0); saw {seen:?}"
    );
    assert!(seen.len() >= 2, "multiple outcomes expected; saw {seen:?}");
}

/// An unsynchronized UnsafeCell write/read pair is a data race, found
/// without ever touching the racing memory.
#[test]
fn unsynchronized_cell_access_is_a_race() {
    let res = check(Config::default(), || {
        let cell = Arc::new(SyncCell(ModelCell::new(0u64)));
        let t = {
            let cell = Arc::clone(&cell);
            msc_model::thread::spawn(move || {
                cell.0.with_mut(|p| {
                    // SAFETY-equivalent: the model intercepts the access
                    // before the dereference; the write itself is fine in
                    // the schedules that reach it.
                    unsafe { *p = 7 }
                });
            })
        };
        cell.0.with(|p| unsafe { *p });
        t.join();
    });
    let v = res.expect_err("unsynchronized cell access must race");
    assert!(
        matches!(v.kind, ViolationKind::DataRace(_)),
        "unexpected violation: {v}"
    );
}

/// The same cell protected by release/acquire on a flag is race-free.
#[test]
fn flag_published_cell_is_race_free() {
    let stats = model(|| {
        let flag = Arc::new(AU64::new(0));
        let cell = Arc::new(SyncCell(ModelCell::new(0u64)));
        let t = {
            let (flag, cell) = (Arc::clone(&flag), Arc::clone(&cell));
            msc_model::thread::spawn(move || {
                cell.0.with_mut(|p| unsafe { *p = 7 });
                flag.store(1, Ordering::Release);
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            let v = cell.0.with(|p| unsafe { *p });
            assert_eq!(v, 7);
        }
        t.join();
    });
    assert!(stats.complete);
}

/// ABBA lock ordering deadlocks in some schedule; the checker reports it.
#[test]
fn abba_lock_order_deadlocks() {
    let res = check(Config::default(), || {
        let a = Arc::new(ModelLock::new(0u64));
        let b = Arc::new(ModelLock::new(0u64));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            msc_model::thread::spawn(move || {
                let ga = a.write();
                let gb = b.write();
                drop((ga, gb));
            })
        };
        let gb = b.write();
        let ga = a.write();
        drop((ga, gb));
        t.join();
    });
    let v = res.expect_err("ABBA ordering must deadlock somewhere");
    assert!(
        matches!(v.kind, ViolationKind::Deadlock),
        "unexpected violation: {v}"
    );
}

/// Lock-protected increments never lose updates.
#[test]
fn locked_counter_is_exact() {
    let stats = model(|| {
        let n = Arc::new(ModelLock::new(0u64));
        let t = {
            let n = Arc::clone(&n);
            msc_model::thread::spawn(move || {
                *n.write() += 1;
            })
        };
        *n.write() += 1;
        t.join();
        assert_eq!(*n.read(), 2);
    });
    assert!(stats.complete);
    assert!(stats.interleavings >= 2);
}

/// fetch_add is atomic even when Relaxed: concurrent increments both land.
#[test]
fn relaxed_fetch_add_is_atomic() {
    let stats = model(|| {
        let n = Arc::new(AU64::new(0));
        let t = {
            let n = Arc::clone(&n);
            msc_model::thread::spawn(move || {
                n.fetch_add(1, Ordering::Relaxed);
            })
        };
        n.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost RMW update");
    });
    assert!(stats.complete);
}

/// Exploration bookkeeping is self-consistent and pruning fires on the
/// diamond of commuting operations.
#[test]
fn stats_are_consistent() {
    let stats = model(|| {
        let x = Arc::new(AU64::new(0));
        let y = Arc::new(AU64::new(0));
        let t = {
            let x = Arc::clone(&x);
            msc_model::thread::spawn(move || {
                x.fetch_add(1, Ordering::Relaxed);
                x.fetch_add(1, Ordering::Relaxed);
            })
        };
        y.fetch_add(1, Ordering::Relaxed);
        y.fetch_add(1, Ordering::Relaxed);
        t.join();
    });
    assert!(stats.complete);
    assert_eq!(
        stats.runs(),
        stats.interleavings + stats.pruned + stats.truncated
    );
    assert!(stats.pruned > 0, "commuting diamond must prune: {stats:?}");
    assert!(stats.decision_points > 0);
    assert!(stats.max_depth > 0);
    assert!(stats.prune_rate() > 0.0 && stats.prune_rate() < 1.0);
}

/// Wrapper asserting Sync for a ModelCell used under a modeled protocol —
/// exactly what the collector ring does with its buffer slots.
struct SyncCell(ModelCell<u64>);
// The model run serializes all accesses and race-checks them; sharing the
// cell across model threads is the entire point of the test.
unsafe impl Sync for SyncCell {}
unsafe impl Send for SyncCell {}
