//! Model threads: `std::thread`-shaped spawn/join that the engine
//! schedules. Spawn establishes the usual happens-before edge from the
//! parent's history to the child; join establishes the edge from the
//! child's full history to the joiner.

use crate::exec;
use std::sync::{Arc, Mutex, PoisonError};

/// Spawn a model thread running `f`. Must be called from inside a model
/// run ([`crate::check`] / [`crate::model`]).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let out = Arc::clone(&slot);
    let tid = exec::spawn_model_thread(Box::new(move || {
        let v = f();
        *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
    }));
    JoinHandle { tid, slot }
}

/// Handle to a model thread; [`join`](JoinHandle::join) blocks (in model
/// time) until the thread finishes and returns its value.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> T {
        exec::join_thread(self.tid);
        let v = self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        let Some(v) = v else {
            // A child that panicked or was abandoned never lets join_thread
            // return normally (the execution is already unwinding).
            unreachable!("joined model thread finished without a value");
        };
        v
    }
}
