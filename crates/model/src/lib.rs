//! `msc-model` — a vendored mini-[loom]: exhaustive bounded interleaving
//! checking for the workspace's lock-free code.
//!
//! The collector's SPSC ring and the diagnosis step cache are the only
//! concurrent data structures in the tree, and they sit directly under the
//! paper's runtime-collector and memoized-diagnosis claims: a missed
//! Acquire/Release pairing there silently corrupts batch records or cache
//! hits instead of crashing. This crate turns "we believe the orderings are
//! right" into a CI-enforced proof, in two layers:
//!
//! 1. **[`prims`]** — a `Sync`-primitives abstraction ([`prims::Prims`])
//!    that the concurrent cores are generic over. Production code
//!    instantiates them with [`prims::StdPrims`] (zero-cost forwarding to
//!    `std::sync::atomic` / `std::sync::RwLock`); model tests instantiate
//!    them with [`shim::ModelPrims`].
//! 2. **The checker** ([`check`] / [`model`]) — a deterministic scheduler
//!    that runs a closure (which spawns model threads via
//!    [`thread::spawn`]) over the shim types, exploring thread
//!    interleavings exhaustively up to a bounded depth: DFS over schedule
//!    prefixes, with state hashing to prune interleavings that converge to
//!    an already-explored state.
//!
//! ## What the model actually checks
//!
//! * **Memory-ordering visibility.** Every atomic location keeps its full
//!   store history. A load may read any store not yet ruled out by
//!   coherence or happens-before, so `Relaxed` loads *actually return
//!   stale values* in some explored interleavings; `Acquire` loads of a
//!   `Release` store join the writer's vector clock and make its prior
//!   writes visible. A wrong `Relaxed` therefore produces a concrete
//!   failing schedule, not a lucky pass.
//! * **Data races.** [`shim::ModelCell`] (the `UnsafeCell` stand-in) runs a
//!   FastTrack-style detector: an access that is not happens-before-ordered
//!   against a prior conflicting access is a [`ViolationKind::DataRace`].
//! * **Deadlocks** of the modeled locks, and **panics** (assertion
//!   failures) in any explored interleaving.
//!
//! See `DESIGN.md` §7 for the precise list of modeled and unmodeled
//! behaviours (no SeqCst total order, no release sequences, modification
//! order equals execution order).
//!
//! [loom]: https://github.com/tokio-rs/loom
//!
//! ## Example
//!
//! ```
//! use msc_model::prims::{Atomic, Ordering, Prims};
//! use msc_model::shim::ModelPrims;
//! use std::sync::Arc;
//!
//! // Message passing: data is published by a Release store and consumed
//! // after an Acquire load observes the flag. The checker proves no
//! // interleaving reads the flag as set without seeing the data.
//! let stats = msc_model::model(|| {
//!     let flag = Arc::new(<ModelPrims as Prims>::AU64::new(0));
//!     let data = Arc::new(<ModelPrims as Prims>::AU64::new(0));
//!     let t = {
//!         let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
//!         msc_model::thread::spawn(move || {
//!             data.store(42, Ordering::Relaxed); // ordering: published by the Release below
//!             flag.store(1, Ordering::Release);
//!         })
//!     };
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.load(Ordering::Relaxed), 42); // ordering: covered by the Acquire above
//!     }
//!     t.join();
//! });
//! assert!(stats.complete);
//! ```

#![forbid(unsafe_code)]

pub mod clock;
mod exec;
pub mod prims;
pub mod shim;
pub mod thread;

pub use exec::{check, model, Config, Stats, Violation, ViolationKind};
