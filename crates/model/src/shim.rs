//! Instrumented [`crate::prims::Prims`] instantiation: every operation is
//! reported to the exploration engine ([`crate::check`]) instead of (or in
//! addition to) touching real synchronization state.
//!
//! All shim types may only be **constructed and used inside a model run**;
//! outside one they panic with a pointed message. Construction order is
//! deterministic per replayed schedule (threads run serialized under the
//! scheduling token), which is what lets the engine identify the same
//! logical object across executions by registration index.

use crate::exec;
use crate::prims::{Atomic, Ordering, Prims, RawCell, SharedLock};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The model-checked [`Prims`] family.
pub struct ModelPrims;

impl Prims for ModelPrims {
    type AUsize = ModelAtomicUsize;
    type AU64 = ModelAtomicU64;
    type Cell<T> = ModelCell<T>;
    type Lock<T> = ModelLock<T>;
}

/// Modeled `AtomicU64`: the value lives in the engine's per-location store
/// history, so loads can (and do) return stale values permitted by the
/// memory model.
#[derive(Debug)]
pub struct ModelAtomicU64 {
    loc: usize,
}

impl Atomic<u64> for ModelAtomicU64 {
    fn new(v: u64) -> Self {
        Self {
            loc: exec::register_atomic(v),
        }
    }
    fn load(&self, order: Ordering) -> u64 {
        exec::atomic_load(self.loc, order)
    }
    fn store(&self, v: u64, order: Ordering) {
        exec::atomic_store(self.loc, v, order);
    }
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        exec::atomic_rmw_add(self.loc, v, order)
    }
}

/// Modeled `AtomicUsize` (stored as `u64` in the engine).
#[derive(Debug)]
pub struct ModelAtomicUsize {
    loc: usize,
}

impl Atomic<usize> for ModelAtomicUsize {
    fn new(v: usize) -> Self {
        Self {
            loc: exec::register_atomic(v as u64),
        }
    }
    fn load(&self, order: Ordering) -> usize {
        exec::atomic_load(self.loc, order) as usize
    }
    fn store(&self, v: usize, order: Ordering) {
        exec::atomic_store(self.loc, v as u64, order);
    }
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        exec::atomic_rmw_add(self.loc, v as u64, order) as usize
    }
}

/// Modeled `UnsafeCell`: the data is real (callers dereference the pointer
/// in their own `unsafe`), but every access first passes a FastTrack-style
/// happens-before race check — an unordered conflicting access is reported
/// as [`crate::ViolationKind::DataRace`] before any memory is touched.
#[derive(Debug, Default)]
pub struct ModelCell<T> {
    id: usize,
    inner: UnsafeCell<T>,
}

impl<T> RawCell<T> for ModelCell<T> {
    fn new(v: T) -> Self {
        Self {
            id: exec::register_cell(),
            inner: UnsafeCell::new(v),
        }
    }
    fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        exec::cell_access(self.id, false);
        // The closure runs while this thread still holds the scheduling
        // token, so the modeled access and the real one are one atomic step.
        f(self.inner.get().cast_const())
    }
    fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        exec::cell_access(self.id, true);
        f(self.inner.get())
    }
}

/// Modeled reader-writer lock. The blocking protocol (who may hold the lock
/// when, deadlocks, and the release→acquire happens-before edges) is
/// simulated by the engine; the protected data lives in a real inner
/// `RwLock` that is only touched once the model has granted access, so it
/// is never contended and the guards need no `unsafe`.
#[derive(Debug)]
pub struct ModelLock<T> {
    id: usize,
    inner: RwLock<T>,
}

impl<T> SharedLock<T> for ModelLock<T> {
    type ReadGuard<'a>
        = ModelReadGuard<'a, T>
    where
        Self: 'a;
    type WriteGuard<'a>
        = ModelWriteGuard<'a, T>
    where
        Self: 'a;

    fn new(v: T) -> Self {
        Self {
            id: exec::register_lock(),
            inner: RwLock::new(v),
        }
    }
    fn read(&self) -> ModelReadGuard<'_, T> {
        exec::lock_acquire(self.id, false);
        ModelReadGuard {
            id: self.id,
            g: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
        }
    }
    fn write(&self) -> ModelWriteGuard<'_, T> {
        exec::lock_acquire(self.id, true);
        ModelWriteGuard {
            id: self.id,
            g: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

pub struct ModelReadGuard<'a, T> {
    id: usize,
    g: Option<RwLockReadGuard<'a, T>>,
}

impl<T> Deref for ModelReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        let Some(g) = &self.g else {
            unreachable!("guard emptied only in drop")
        };
        g
    }
}

impl<T> Drop for ModelReadGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the modeled release schedules
        // another thread that may immediately take the inner lock.
        self.g = None;
        exec::lock_release(self.id, false);
    }
}

pub struct ModelWriteGuard<'a, T> {
    id: usize,
    g: Option<RwLockWriteGuard<'a, T>>,
}

impl<T> Deref for ModelWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        let Some(g) = &self.g else {
            unreachable!("guard emptied only in drop")
        };
        g
    }
}

impl<T> DerefMut for ModelWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        let Some(g) = &mut self.g else {
            unreachable!("guard emptied only in drop")
        };
        g
    }
}

impl<T> Drop for ModelWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.g = None;
        exec::lock_release(self.id, true);
    }
}
