//! Vector clocks: the happens-before partial order of one model execution.
//!
//! Every model thread owns one component; every operation ticks the owning
//! component. A `Release` store (or lock release) snapshots the writer's
//! clock; an `Acquire` load (or lock acquire) joins that snapshot into the
//! reader's clock. "`a` happens-before `b`" is then exactly "`b`'s clock
//! covers `a`'s (writer, tick) coordinate" — the race detector and the
//! stale-read floor both reduce to [`VClock::covers`] queries.

/// A grow-on-demand vector clock. Missing components read as 0, so clocks
/// created before later threads spawn compare correctly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// This thread performed one more operation.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// The component for `tid` (0 when never ticked).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Pointwise maximum: after `self.join(o)`, everything ordered before
    /// `o` is ordered before `self` too.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(o);
        }
    }

    /// True when the event "(tid, tick)" is ordered before this clock.
    pub fn covers(&self, tid: usize, tick: u32) -> bool {
        self.get(tid) >= tick
    }

    /// The raw components, for state hashing.
    pub fn components(&self) -> &[u32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert!(a.covers(1, 1));
        assert!(!a.covers(1, 2));
    }

    #[test]
    fn covers_unticked_components() {
        let c = VClock::new();
        assert!(c.covers(7, 0));
        assert!(!c.covers(7, 1));
    }
}
