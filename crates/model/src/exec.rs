//! The interleaving-exploration engine.
//!
//! One *execution* runs the user closure to completion with every shim
//! operation serialized: exactly one model thread holds the scheduling token
//! at a time, and each operation ends by choosing the next token holder.
//! Every such choice (and every multi-candidate `Relaxed` load) is a
//! *decision* recorded on a persistent DFS stack of [`Frame`]s; after an
//! execution finishes, the deepest non-exhausted frame advances and the
//! closure is replayed from scratch along the recorded prefix. The search
//! terminates when the stack empties (every reachable schedule explored
//! within bounds) or a bound trips ([`Config::max_steps`] /
//! [`Config::max_executions`]).
//!
//! Soundness of the state-hash pruning relies on model threads being
//! deterministic functions of what they have observed: each thread folds
//! every observation (atomic load values, cell versions, lock generations)
//! into a rolling `obs` hash, so two states with equal hashes have — modulo
//! 64-bit collisions — identical futures and only one needs exploring.

use crate::clock::VClock;
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

/// Exploration bounds. The defaults comfortably cover the workspace's model
/// tests (2–3 threads, a handful of operations each) while keeping any
/// accidental blow-up finite.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum concurrently-registered model threads per execution.
    pub max_threads: usize,
    /// Maximum shim operations per execution; exceeding it truncates the
    /// execution (recorded in [`Stats::truncated`], clears
    /// [`Stats::complete`]).
    pub max_steps: usize,
    /// Maximum executions (completed + pruned + truncated) before the
    /// search stops with [`Stats::complete`] `= false`.
    pub max_executions: u64,
    /// Maximum recorded trace lines kept for violation reports.
    pub trace_cap: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_threads: 8,
            max_steps: 4096,
            max_executions: 2_000_000,
            trace_cap: 256,
        }
    }
}

/// What the search did. Returned by [`check`] / [`model`] and serialized
/// into `results/BENCH_model.json` by the model bench.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Executions that ran to completion.
    pub interleavings: u64,
    /// Executions abandoned because a scheduling point reached an
    /// already-explored state.
    pub pruned: u64,
    /// Executions cut short by [`Config::max_steps`].
    pub truncated: u64,
    /// Total decisions taken (thread choices + multi-candidate reads).
    pub decision_points: u64,
    /// Distinct state hashes seen at branching scheduling points.
    pub distinct_states: u64,
    /// Deepest decision stack reached.
    pub max_depth: usize,
    /// True iff the search exhausted every schedule within bounds: the DFS
    /// stack emptied with no truncations and no execution-budget stop.
    pub complete: bool,
}

impl Stats {
    /// Total executions started.
    pub fn runs(&self) -> u64 {
        self.interleavings + self.pruned + self.truncated
    }

    /// Fraction of executions cut off by state-hash pruning.
    pub fn prune_rate(&self) -> f64 {
        let runs = self.runs();
        if runs == 0 {
            0.0
        } else {
            self.pruned as f64 / runs as f64
        }
    }
}

/// A property failure in some explored interleaving, plus the operation
/// trace of the execution that exposed it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Shim-operation log of the failing execution (capped at
    /// [`Config::trace_cap`] lines).
    pub trace: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two unordered conflicting accesses to a [`crate::shim::ModelCell`].
    DataRace(String),
    /// Live threads exist but none is runnable.
    Deadlock,
    /// A model thread panicked (assertion failure, etc.).
    Panic(String),
    /// More than [`Config::max_threads`] threads were spawned.
    ThreadLimit,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ViolationKind::DataRace(m) => write!(f, "data race: {m}"),
            ViolationKind::Deadlock => write!(f, "deadlock: live threads but none runnable"),
            ViolationKind::Panic(m) => write!(f, "panic in model thread: {m}"),
            ViolationKind::ThreadLimit => write!(f, "thread limit exceeded"),
        }
    }
}

/// One decision on the DFS stack: `n` alternatives existed, branch `taken`
/// is the one the current/next execution follows.
#[derive(Debug, Clone, Copy)]
struct Frame {
    n: usize,
    taken: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for the lock with this id.
    BlockedLock(usize),
    /// Waiting for the thread with this tid to finish.
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadSt {
    status: Status,
    clock: VClock,
    /// Per-atomic-location coherence floor: the lowest store index this
    /// thread may still read from that location.
    seen: Vec<u32>,
    /// Operations performed; a schedule-invariant program counter.
    ops: u64,
    /// Rolling hash of everything observed (load values, cell versions,
    /// lock generations). See module docs for why this makes state-hash
    /// pruning sound.
    obs: u64,
}

impl ThreadSt {
    fn child_of(parent: &ThreadSt) -> ThreadSt {
        ThreadSt {
            status: Status::Runnable,
            clock: parent.clock.clone(),
            seen: parent.seen.clone(),
            ops: 0,
            obs: FNV_OFFSET,
        }
    }

    fn root() -> ThreadSt {
        ThreadSt {
            status: Status::Runnable,
            clock: VClock::new(),
            seen: Vec::new(),
            ops: 0,
            obs: FNV_OFFSET,
        }
    }

    fn observe(&mut self, x: u64) {
        self.obs = fnv(self.obs, x);
    }
}

/// One store in an atomic location's modification history.
#[derive(Debug, Clone)]
struct StoreEv {
    val: u64,
    tid: usize,
    tick: u32,
    /// True for Release/AcqRel/SeqCst stores: an Acquire load of this store
    /// joins `clock` and `seen` into the reader.
    release: bool,
    clock: VClock,
    seen: Vec<u32>,
}

#[derive(Debug, Default)]
struct AtomicSt {
    stores: Vec<StoreEv>,
}

#[derive(Debug, Default)]
struct CellSt {
    /// Last write as a (tid, tick) event, plus a monotone version counter.
    last_write: Option<(usize, u32)>,
    version: u64,
    /// Reads since the last write, one entry per reading thread.
    reads: Vec<(usize, u32)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockState {
    Unlocked,
    Read(usize),
    Write(usize),
}

#[derive(Debug)]
struct LockSt {
    state: LockState,
    /// Join of every releaser's clock; acquirers synchronize with it.
    clock: VClock,
    seen: Vec<u32>,
    /// Release generation, folded into acquirers' `obs`.
    gen: u64,
}

struct St {
    // Persistent across executions.
    stack: Vec<Frame>,
    seen_states: HashSet<u64>,
    stats: Stats,
    // Replay cursor into `stack` for the current execution.
    depth: usize,
    // Per-execution state.
    steps: u64,
    threads: Vec<ThreadSt>,
    atomics: Vec<AtomicSt>,
    cells: Vec<CellSt>,
    locks: Vec<LockSt>,
    active: usize,
    live: usize,
    abandoned: bool,
    // True while a destructor runs a shim op during unwind (teardown).
    // Teardown ops must not consume or record decisions — they are not part
    // of the explored schedule — and must not report violations (the state
    // they see is mid-abandonment, not a schedule the checker chose).
    teardown: bool,
    violation: Option<Violation>,
    trace: Vec<String>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl St {
    fn new() -> St {
        St {
            stack: Vec::new(),
            seen_states: HashSet::new(),
            stats: Stats::default(),
            depth: 0,
            steps: 0,
            threads: Vec::new(),
            atomics: Vec::new(),
            cells: Vec::new(),
            locks: Vec::new(),
            active: 0,
            live: 0,
            abandoned: false,
            teardown: false,
            violation: None,
            trace: Vec::new(),
            handles: Vec::new(),
        }
    }

    fn reset_execution(&mut self) {
        self.depth = 0;
        self.steps = 0;
        self.threads.clear();
        self.threads.push(ThreadSt::root());
        self.atomics.clear();
        self.cells.clear();
        self.locks.clear();
        self.active = 0;
        self.live = 1;
        self.abandoned = false;
        self.teardown = false;
        self.trace.clear();
    }
}

struct Shared {
    cfg: Config,
    st: Mutex<St>,
    cv: Condvar,
}

#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Panic payload used to unwind model threads when an execution is
/// abandoned (pruned, truncated, or another thread already violated).
struct Abandon;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

fn fnv_slice(mut h: u64, xs: &[u32]) -> u64 {
    for &x in xs {
        h = fnv(h, u64::from(x));
    }
    fnv(h, 0x5eed)
}

fn lock_st(sh: &Shared) -> MutexGuard<'_, St> {
    sh.st.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait_st<'a>(sh: &'a Shared, g: MutexGuard<'a, St>) -> MutexGuard<'a, St> {
    sh.cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

fn ctx() -> Ctx {
    let Some(c) = CURRENT.with(|c| c.borrow().clone()) else {
        panic!("msc-model shim used outside a model run; wrap the code in msc_model::model(...)");
    };
    c
}

/// Install (once, process-wide) a panic hook that silences model threads:
/// their panics are either the internal [`Abandon`] control flow or are
/// captured and reported as [`ViolationKind::Panic`], so the default
/// stderr backtrace would only spam expected-failure output.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(Cell::get) {
                return;
            }
            prev(info);
        }));
    });
}

fn push_trace(st: &mut St, cfg: &Config, line: impl FnOnce() -> String) {
    if st.trace.len() < cfg.trace_cap {
        let s = line();
        st.trace.push(s);
    }
}

fn set_violation(st: &mut St, kind: ViolationKind) {
    if st.teardown {
        // Unwind-time destructors observe mid-abandonment state; anything
        // they trip over is not a finding about the model closure.
        return;
    }
    if st.violation.is_none() {
        st.violation = Some(Violation {
            kind,
            trace: st.trace.clone(),
        });
    }
    st.abandoned = true;
}

/// Record (or replay) a decision with `n` alternatives; returns the branch
/// to take in this execution.
fn decide(st: &mut St, n: usize) -> usize {
    if st.teardown {
        // Teardown ops are outside the explored schedule: resolve every
        // choice to the first alternative without touching the DFS stack.
        return 0;
    }
    st.stats.decision_points += 1;
    let d = st.depth;
    st.depth += 1;
    if d < st.stack.len() {
        assert_eq!(
            st.stack[d].n, n,
            "replay divergence: checker bug or non-deterministic model closure"
        );
        st.stack[d].taken
    } else {
        st.stack.push(Frame { n, taken: 0 });
        if st.stack.len() > st.stats.max_depth {
            st.stats.max_depth = st.stack.len();
        }
        0
    }
}

/// Hash everything that determines future behaviour (see module docs).
fn state_hash(st: &St) -> u64 {
    let mut h = FNV_OFFSET;
    for t in &st.threads {
        let disc = match t.status {
            Status::Runnable => 1,
            Status::BlockedLock(id) => 2 + ((id as u64) << 8),
            Status::BlockedJoin(id) => 3 + ((id as u64) << 8),
            Status::Finished => 4,
        };
        h = fnv(h, disc);
        h = fnv(h, t.ops);
        h = fnv(h, t.obs);
        h = fnv_slice(h, t.clock.components());
        h = fnv_slice(h, &t.seen);
    }
    for a in &st.atomics {
        for s in &a.stores {
            h = fnv(h, s.val);
            h = fnv(
                h,
                (s.tid as u64) << 33 | u64::from(s.tick) << 1 | u64::from(s.release),
            );
        }
        h = fnv(h, 0xa70a);
    }
    for c in &st.cells {
        h = fnv(h, c.version);
        if let Some((tid, tick)) = c.last_write {
            h = fnv(h, (tid as u64) << 32 | u64::from(tick));
        }
        for &(tid, tick) in &c.reads {
            h = fnv(h, (tid as u64) << 32 | u64::from(tick));
        }
        h = fnv(h, 0xce11);
    }
    for l in &st.locks {
        let disc = match l.state {
            LockState::Unlocked => 1,
            LockState::Read(n) => 2 + ((n as u64) << 8),
            LockState::Write(t) => 3 + ((t as u64) << 8),
        };
        h = fnv(h, disc);
        h = fnv(h, l.gen);
        h = fnv_slice(h, l.clock.components());
        h = fnv_slice(h, &l.seen);
    }
    h
}

/// Pick the next token holder. Called at the end of every shim operation
/// and when a thread blocks or finishes.
fn schedule_next(st: &mut St, sh: &Shared) {
    if st.abandoned {
        sh.cv.notify_all();
        return;
    }
    let mut runnable: Vec<usize> = Vec::new();
    for (i, t) in st.threads.iter().enumerate() {
        if t.status == Status::Runnable {
            runnable.push(i);
        }
    }
    if runnable.is_empty() {
        if st.live > 0 {
            set_violation(st, ViolationKind::Deadlock);
        }
        sh.cv.notify_all();
        return;
    }
    let idx = if runnable.len() == 1 {
        0
    } else {
        // Prune: at a genuine branch point in unexplored territory, a state
        // seen before has an already-explored future.
        if st.depth >= st.stack.len() {
            let h = state_hash(st);
            if !st.seen_states.insert(h) {
                st.stats.pruned += 1;
                st.abandoned = true;
                sh.cv.notify_all();
                return;
            }
            st.stats.distinct_states += 1;
        }
        decide(st, runnable.len())
    };
    st.active = runnable[idx];
    sh.cv.notify_all();
}

/// Block until this thread holds the scheduling token again (or the
/// execution is abandoned, in which case unwind).
fn wait_active<'a>(sh: &'a Shared, mut g: MutexGuard<'a, St>, tid: usize) -> MutexGuard<'a, St> {
    loop {
        if g.abandoned {
            drop(g);
            panic::panic_any(Abandon);
        }
        if g.active == tid && g.threads[tid].status == Status::Runnable {
            return g;
        }
        g = wait_st(sh, g);
    }
}

/// Run one shim operation as a scheduling point. `body` returns `Some(r)`
/// when the operation completed, `None` when the thread must block (the
/// body has already set its blocked status); blocked threads retry after
/// being woken and rescheduled.
fn op<R>(body: impl FnMut(&mut St, &Config, usize) -> Option<R>) -> R {
    let c = ctx();
    let sh: &Shared = &c.shared;
    let tid = c.tid;
    let mut body = body;
    if std::thread::panicking() {
        // This thread is unwinding (Abandon or a reported failure) and a
        // destructor reached a shim op — e.g. a lock guard releasing or a
        // ring draining its slots. Apply the state effect so other threads
        // unblock, but do not schedule or panic again (a panic-in-panic
        // aborts the process), and — critically — flag teardown so the body
        // neither consumes/records decisions (which thread unwinds first is
        // not part of the explored schedule; touching the DFS stack here
        // desynchronises later replays) nor reports violations.
        let mut g = lock_st(sh);
        g.teardown = true;
        let out = body(&mut g, &sh.cfg, tid);
        g.teardown = false;
        match out {
            Some(r) => {
                sh.cv.notify_all();
                return r;
            }
            None => unreachable!("blocking shim op in a destructor during unwind"),
        }
    }
    let mut g = lock_st(sh);
    loop {
        if g.abandoned {
            drop(g);
            panic::panic_any(Abandon);
        }
        g.steps += 1;
        if g.steps > sh.cfg.max_steps as u64 {
            g.stats.truncated += 1;
            g.abandoned = true;
            sh.cv.notify_all();
            drop(g);
            panic::panic_any(Abandon);
        }
        let out = body(&mut g, &sh.cfg, tid);
        if g.abandoned {
            sh.cv.notify_all();
            drop(g);
            panic::panic_any(Abandon);
        }
        match out {
            Some(r) => {
                g.threads[tid].ops += 1;
                schedule_next(&mut g, sh);
                let g2 = wait_active(sh, g, tid);
                drop(g2);
                return r;
            }
            None => {
                schedule_next(&mut g, sh);
                g = wait_active(sh, g, tid);
            }
        }
    }
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ensure_seen(seen: &mut Vec<u32>, loc: usize) {
    if seen.len() <= loc {
        seen.resize(loc + 1, 0);
    }
}

fn join_seen(dst: &mut Vec<u32>, src: &[u32]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).max(s);
    }
}

// --- Shim entry points -----------------------------------------------------

/// Register a new atomic location; its initial value is a Release store by
/// the creating thread (initialization happens-before every access that can
/// reach the atomic).
pub(crate) fn register_atomic(init: u64) -> usize {
    let c = ctx();
    let mut g = lock_st(&c.shared);
    if g.abandoned {
        drop(g);
        panic::panic_any(Abandon);
    }
    let tid = c.tid;
    g.threads[tid].clock.tick(tid);
    let tick = g.threads[tid].clock.get(tid);
    let clock = g.threads[tid].clock.clone();
    let seen = g.threads[tid].seen.clone();
    let loc = g.atomics.len();
    g.atomics.push(AtomicSt {
        stores: vec![StoreEv {
            val: init,
            tid,
            tick,
            release: true,
            clock,
            seen,
        }],
    });
    ensure_seen(&mut g.threads[tid].seen, loc);
    loc
}

pub(crate) fn atomic_load(loc: usize, order: Ordering) -> u64 {
    op(move |st, cfg, tid| {
        let acq = is_acquire(order);
        // A load may read any store not ruled out by coherence (this
        // thread's floor for the location) or happens-before (any store
        // hb-ordered before the load hides all earlier stores).
        let mut hb = 0usize;
        for (j, s) in st.atomics[loc].stores.iter().enumerate() {
            if st.threads[tid].clock.covers(s.tid, s.tick) {
                hb = j;
            }
        }
        ensure_seen(&mut st.threads[tid].seen, loc);
        let floor = (st.threads[tid].seen[loc] as usize).max(hb);
        let ncand = st.atomics[loc].stores.len() - floor;
        let idx = if ncand > 1 {
            floor + decide(st, ncand)
        } else {
            floor
        };
        let s = st.atomics[loc].stores[idx].clone();
        let t = &mut st.threads[tid];
        t.seen[loc] = t.seen[loc].max(idx as u32);
        if acq && s.release {
            t.clock.join(&s.clock);
            join_seen(&mut t.seen, &s.seen);
        }
        t.clock.tick(tid);
        t.observe(fnv(fnv(loc as u64, idx as u64), s.val));
        let v = s.val;
        push_trace(st, cfg, || {
            format!("t{tid} load  a{loc}[{idx}] -> {v} ({order:?})")
        });
        Some(v)
    })
}

pub(crate) fn atomic_store(loc: usize, val: u64, order: Ordering) {
    op(move |st, cfg, tid| {
        let rel = is_release(order);
        {
            let t = &mut st.threads[tid];
            t.clock.tick(tid);
            ensure_seen(&mut t.seen, loc);
        }
        let idx = st.atomics[loc].stores.len();
        st.threads[tid].seen[loc] = idx as u32;
        let tick = st.threads[tid].clock.get(tid);
        let clock = st.threads[tid].clock.clone();
        let seen = st.threads[tid].seen.clone();
        st.atomics[loc].stores.push(StoreEv {
            val,
            tid,
            tick,
            release: rel,
            clock,
            seen,
        });
        push_trace(st, cfg, || {
            format!("t{tid} store a{loc}[{idx}] <- {val} ({order:?})")
        });
        Some(())
    });
}

/// Read-modify-write. Always reads the newest store (RMW atomicity under
/// the model's modification-order-equals-append-order simplification).
pub(crate) fn atomic_rmw_add(loc: usize, delta: u64, order: Ordering) -> u64 {
    op(move |st, cfg, tid| {
        let acq = is_acquire(order);
        let rel = is_release(order);
        let last = st.atomics[loc].stores.len() - 1;
        let s = st.atomics[loc].stores[last].clone();
        {
            let t = &mut st.threads[tid];
            ensure_seen(&mut t.seen, loc);
            t.seen[loc] = last as u32;
            if acq && s.release {
                t.clock.join(&s.clock);
                join_seen(&mut t.seen, &s.seen);
            }
            t.clock.tick(tid);
            t.observe(fnv(fnv(loc as u64, last as u64), s.val));
        }
        let tick = st.threads[tid].clock.get(tid);
        let idx = last + 1;
        st.threads[tid].seen[loc] = idx as u32;
        let clock = st.threads[tid].clock.clone();
        let seen = st.threads[tid].seen.clone();
        let newv = s.val.wrapping_add(delta);
        st.atomics[loc].stores.push(StoreEv {
            val: newv,
            tid,
            tick,
            release: rel,
            clock,
            seen,
        });
        push_trace(st, cfg, || {
            format!(
                "t{tid} rmw   a{loc}[{idx}] {old} -> {newv} ({order:?})",
                old = s.val
            )
        });
        Some(s.val)
    })
}

pub(crate) fn register_cell() -> usize {
    let c = ctx();
    let mut g = lock_st(&c.shared);
    if g.abandoned {
        drop(g);
        panic::panic_any(Abandon);
    }
    g.cells.push(CellSt::default());
    g.cells.len() - 1
}

/// FastTrack-style race check on a modeled `UnsafeCell` access.
pub(crate) fn cell_access(id: usize, write: bool) {
    op(move |st, cfg, tid| {
        let kind = if write { "write" } else { "read" };
        let mut race: Option<String> = None;
        {
            let clock = &st.threads[tid].clock;
            let c = &st.cells[id];
            if let Some((wtid, wtick)) = c.last_write {
                if wtid != tid && !clock.covers(wtid, wtick) {
                    race = Some(format!(
                        "t{tid} {kind} of cell c{id} is unordered with the write by t{wtid}"
                    ));
                }
            }
            if write && race.is_none() {
                for &(rtid, rtick) in &c.reads {
                    if rtid != tid && !clock.covers(rtid, rtick) {
                        race = Some(format!(
                            "t{tid} write of cell c{id} is unordered with the read by t{rtid}"
                        ));
                        break;
                    }
                }
            }
        }
        if let Some(msg) = race {
            push_trace(st, cfg, || format!("t{tid} {kind} c{id} ** RACE **"));
            set_violation(st, ViolationKind::DataRace(msg));
            return Some(());
        }
        let (ver, wsig) = {
            let c = &st.cells[id];
            let wsig = match c.last_write {
                Some((wtid, wtick)) => ((wtid as u64) << 32) | u64::from(wtick),
                None => 0,
            };
            (c.version, wsig)
        };
        {
            let t = &mut st.threads[tid];
            t.clock.tick(tid);
            // A read's value is a deterministic function of the version it
            // reads; folding the version identity into `obs` keeps
            // state-hash pruning sound for cell-mediated data flow.
            t.observe(fnv(fnv(id as u64, ver), wsig));
        }
        let tick = st.threads[tid].clock.get(tid);
        let c = &mut st.cells[id];
        if write {
            c.last_write = Some((tid, tick));
            c.version += 1;
            c.reads.clear();
        } else {
            c.reads.retain(|r| r.0 != tid);
            c.reads.push((tid, tick));
        }
        push_trace(st, cfg, || format!("t{tid} {kind} c{id}"));
        Some(())
    });
}

pub(crate) fn register_lock() -> usize {
    let c = ctx();
    let mut g = lock_st(&c.shared);
    if g.abandoned {
        drop(g);
        panic::panic_any(Abandon);
    }
    g.locks.push(LockSt {
        state: LockState::Unlocked,
        clock: VClock::new(),
        seen: Vec::new(),
        gen: 0,
    });
    g.locks.len() - 1
}

pub(crate) fn lock_acquire(id: usize, write: bool) {
    op(move |st, cfg, tid| {
        let avail = match st.locks[id].state {
            LockState::Unlocked => true,
            LockState::Read(_) => !write,
            LockState::Write(_) => false,
        };
        if !avail {
            st.threads[tid].status = Status::BlockedLock(id);
            push_trace(st, cfg, || format!("t{tid} blocked on l{id}"));
            return None;
        }
        st.locks[id].state = match (st.locks[id].state, write) {
            (LockState::Unlocked, true) => LockState::Write(tid),
            (LockState::Unlocked, false) => LockState::Read(1),
            (LockState::Read(n), false) => LockState::Read(n + 1),
            _ => unreachable!("lock availability checked above"),
        };
        let lclock = st.locks[id].clock.clone();
        let lseen = st.locks[id].seen.clone();
        let gen = st.locks[id].gen;
        let t = &mut st.threads[tid];
        t.clock.join(&lclock);
        join_seen(&mut t.seen, &lseen);
        t.clock.tick(tid);
        t.observe(fnv(id as u64, gen));
        push_trace(st, cfg, || {
            format!("t{tid} {} l{id}", if write { "wlock" } else { "rlock" })
        });
        Some(())
    });
}

pub(crate) fn lock_release(id: usize, write: bool) {
    op(move |st, cfg, tid| {
        {
            let t = &mut st.threads[tid];
            t.clock.tick(tid);
        }
        let tclock = st.threads[tid].clock.clone();
        let tseen = st.threads[tid].seen.clone();
        let l = &mut st.locks[id];
        l.clock.join(&tclock);
        join_seen(&mut l.seen, &tseen);
        l.gen += 1;
        l.state = match (l.state, write) {
            (LockState::Write(_), true) => LockState::Unlocked,
            (LockState::Read(1), false) => LockState::Unlocked,
            (LockState::Read(n), false) => LockState::Read(n - 1),
            _ => unreachable!("release must match a held acquire"),
        };
        if l.state == LockState::Unlocked {
            for th in &mut st.threads {
                if th.status == Status::BlockedLock(id) {
                    th.status = Status::Runnable;
                }
            }
        }
        push_trace(st, cfg, || format!("t{tid} unlock l{id}"));
        Some(())
    });
}

// --- Thread lifecycle ------------------------------------------------------

pub(crate) fn spawn_model_thread(body: Box<dyn FnOnce() + Send + 'static>) -> usize {
    let c = ctx();
    let sh = Arc::clone(&c.shared);
    let tid = {
        let mut g = lock_st(&sh);
        if g.abandoned {
            drop(g);
            panic::panic_any(Abandon);
        }
        let tid = g.threads.len();
        if tid >= sh.cfg.max_threads {
            set_violation(&mut g, ViolationKind::ThreadLimit);
            sh.cv.notify_all();
            drop(g);
            panic::panic_any(Abandon);
        }
        let parent = c.tid;
        g.threads[parent].clock.tick(parent);
        let child = ThreadSt::child_of(&g.threads[parent]);
        g.threads.push(child);
        g.live += 1;
        push_trace(&mut g, &sh.cfg, || format!("t{parent} spawn t{tid}"));
        tid
    };
    let sh2 = Arc::clone(&sh);
    let spawned = std::thread::Builder::new()
        .name(format!("msc-model-{tid}"))
        .spawn(move || run_thread(&sh2, tid, body));
    match spawned {
        Ok(h) => lock_st(&sh).handles.push(h),
        Err(e) => panic!("failed to spawn model OS thread: {e}"),
    }
    // Spawning is a scheduling point: the child may run before the
    // parent's next operation.
    op(|_, _, _| Some(()));
    tid
}

/// Block until `target` finishes, then synchronize with everything it did.
pub(crate) fn join_thread(target: usize) {
    op(move |st, cfg, tid| {
        if st.threads[target].status == Status::Finished {
            let tclock = st.threads[target].clock.clone();
            let tseen = st.threads[target].seen.clone();
            let t = &mut st.threads[tid];
            t.clock.join(&tclock);
            join_seen(&mut t.seen, &tseen);
            t.clock.tick(tid);
            t.observe(fnv(0x10f1, target as u64));
            push_trace(st, cfg, || format!("t{tid} joined t{target}"));
            Some(())
        } else {
            st.threads[tid].status = Status::BlockedJoin(target);
            None
        }
    });
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_thread(sh: &Arc<Shared>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    IN_MODEL.with(|c| c.set(true));
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: Arc::clone(sh),
            tid,
        })
    });
    // Run no user code until first scheduled: shim-object registration
    // order must be a deterministic function of the replayed schedule.
    let scheduled = {
        let mut g = lock_st(sh);
        loop {
            if g.abandoned {
                break false;
            }
            if g.active == tid {
                break true;
            }
            g = wait_st(sh, g);
        }
    };
    let failure: Option<String> = if scheduled {
        match panic::catch_unwind(AssertUnwindSafe(body)) {
            Ok(()) => None,
            Err(p) => {
                if p.is::<Abandon>() {
                    None
                } else {
                    Some(panic_msg(&*p))
                }
            }
        }
    } else {
        None
    };
    let mut g = lock_st(sh);
    if let Some(msg) = failure {
        set_violation(&mut g, ViolationKind::Panic(msg));
    }
    g.threads[tid].status = Status::Finished;
    g.threads[tid].clock.tick(tid);
    g.live -= 1;
    for th in &mut g.threads {
        if th.status == Status::BlockedJoin(tid) {
            th.status = Status::Runnable;
        }
    }
    push_trace(&mut g, &sh.cfg, || format!("t{tid} finished"));
    schedule_next(&mut g, sh);
    // The final notify covers the controller waiting for live == 0.
    sh.cv.notify_all();
}

// --- Entry points ----------------------------------------------------------

/// Exhaustively explore the interleavings of `f` under `cfg`.
///
/// `f` is re-run once per explored schedule, so it must be a pure setup
/// function: build shim objects, spawn model threads, assert. Returns the
/// exploration [`Stats`] or the first [`Violation`] found.
pub fn check<F>(cfg: Config, f: F) -> Result<Stats, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    install_hook();
    let shared = Arc::new(Shared {
        cfg,
        st: Mutex::new(St::new()),
        cv: Condvar::new(),
    });
    let f = Arc::new(f);
    loop {
        lock_st(&shared).reset_execution();
        let body: Box<dyn FnOnce() + Send> = {
            let f = Arc::clone(&f);
            Box::new(move || f())
        };
        let sh2 = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("msc-model-0".to_string())
            .spawn(move || run_thread(&sh2, 0, body));
        match spawned {
            Ok(h) => lock_st(&shared).handles.push(h),
            Err(e) => panic!("failed to spawn model OS thread: {e}"),
        }
        {
            let mut g = lock_st(&shared);
            while g.live > 0 {
                g = wait_st(&shared, g);
            }
        }
        let handles = std::mem::take(&mut lock_st(&shared).handles);
        for h in handles {
            let _ = h.join();
        }
        let mut g = lock_st(&shared);
        if let Some(v) = g.violation.take() {
            return Err(v);
        }
        if !g.abandoned {
            g.stats.interleavings += 1;
        }
        if g.stats.runs() >= shared.cfg.max_executions {
            g.stats.complete = false;
            return Ok(g.stats.clone());
        }
        // Backtrack: advance the deepest non-exhausted decision.
        loop {
            match g.stack.last_mut() {
                None => {
                    g.stats.complete = g.stats.truncated == 0;
                    return Ok(g.stats.clone());
                }
                Some(fr) if fr.taken + 1 < fr.n => {
                    fr.taken += 1;
                    break;
                }
                Some(_) => {
                    g.stack.pop();
                }
            }
        }
    }
}

/// [`check`] with the default [`Config`]; panics with the failing schedule
/// on any violation. The shape model tests want.
pub fn model<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    match check(Config::default(), f) {
        Ok(stats) => stats,
        Err(v) => {
            let mut msg =
                format!("model checking found a violation: {v}\n--- failing schedule ---\n");
            for line in &v.trace {
                msg.push_str(line);
                msg.push('\n');
            }
            panic!("{msg}");
        }
    }
}
