//! The `Sync`-primitives abstraction the workspace's concurrent cores are
//! generic over.
//!
//! Production code instantiates [`Prims`] with [`StdPrims`] — `#[inline]`
//! forwarding to `std::sync::atomic` and `std::sync::RwLock` that
//! monomorphizes to exactly the code the non-generic versions compiled to.
//! Model tests instantiate it with [`crate::shim::ModelPrims`], whose types
//! report every operation to the interleaving checker instead.
//!
//! The vocabulary of orderings is `std`'s own [`Ordering`] enum, so the
//! concurrent cores read identically under either instantiation and the
//! `msc-lint` R6 rule (every `Relaxed` carries an `// ordering:`
//! justification) applies to one spelling.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub use std::sync::atomic::Ordering;

/// An atomic location holding a `Copy` value.
///
/// Only the operations the workspace's concurrent cores actually use are
/// abstracted (`load` / `store` / `fetch_add`); widening the surface means
/// widening what the model has to prove, so additions should come with
/// model semantics.
pub trait Atomic<V: Copy>: Send + Sync {
    fn new(v: V) -> Self;
    fn load(&self, order: Ordering) -> V;
    fn store(&self, v: V, order: Ordering);
    fn fetch_add(&self, v: V, order: Ordering) -> V;
}

/// An `UnsafeCell` stand-in with loom-style scoped access.
///
/// The closure receives a raw pointer; dereferencing it is the *caller's*
/// `unsafe` obligation (the cell hands out aliased pointers freely). Under
/// [`crate::shim::ModelPrims`] every access is checked for happens-before
/// ordering against prior conflicting accesses, so a protocol bug in the
/// caller surfaces as a modeled data race instead of silent corruption.
pub trait RawCell<T> {
    fn new(v: T) -> Self;
    /// Shared (read) access to the cell's contents.
    fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R;
    /// Exclusive (write) access to the cell's contents.
    fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R;
}

/// A reader-writer lock. Guards release on drop, exactly like
/// `std::sync::RwLock` — but the trait surfaces no poisoning: a panicked
/// holder is either unwinding the whole process (production) or already a
/// reported model violation, so poison carries no extra information here.
pub trait SharedLock<T> {
    type ReadGuard<'a>: Deref<Target = T>
    where
        Self: 'a;
    type WriteGuard<'a>: Deref<Target = T> + DerefMut
    where
        Self: 'a;

    fn new(v: T) -> Self;
    fn read(&self) -> Self::ReadGuard<'_>;
    fn write(&self) -> Self::WriteGuard<'_>;
}

/// The family of primitive types a concurrent core is generic over.
pub trait Prims {
    type AUsize: Atomic<usize>;
    type AU64: Atomic<u64>;
    type Cell<T>: RawCell<T>;
    type Lock<T>: SharedLock<T>;
}

// ---------------------------------------------------------------------------
// Production instantiation: straight std forwarding.
// ---------------------------------------------------------------------------

/// The production [`Prims`]: real `std::sync` primitives, zero overhead.
pub struct StdPrims;

impl Atomic<usize> for std::sync::atomic::AtomicUsize {
    #[inline]
    fn new(v: usize) -> Self {
        Self::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> usize {
        Self::load(self, order)
    }
    #[inline]
    fn store(&self, v: usize, order: Ordering) {
        Self::store(self, v, order);
    }
    #[inline]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        Self::fetch_add(self, v, order)
    }
}

impl Atomic<u64> for std::sync::atomic::AtomicU64 {
    #[inline]
    fn new(v: u64) -> Self {
        Self::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        Self::load(self, order)
    }
    #[inline]
    fn store(&self, v: u64, order: Ordering) {
        Self::store(self, v, order);
    }
    #[inline]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        Self::fetch_add(self, v, order)
    }
}

/// `UnsafeCell` with the scoped [`RawCell`] API. `!Sync` like the cell it
/// wraps; a containing type asserts its own `Sync` under its handoff
/// protocol (and proves it with a model test).
#[derive(Debug, Default)]
pub struct StdCell<T>(UnsafeCell<T>);

impl<T> RawCell<T> for StdCell<T> {
    #[inline]
    fn new(v: T) -> Self {
        Self(UnsafeCell::new(v))
    }
    #[inline]
    fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get().cast_const())
    }
    #[inline]
    fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

/// `std::sync::RwLock` behind the poison-free [`SharedLock`] surface: a
/// poisoned lock yields its guard anyway. The workspace's only locked state
/// (cache shard maps) is structurally valid after any panic — entries are
/// immutable `Arc`s and `HashMap` is panic-safe — so continuing is strictly
/// better than cascading the panic into every other worker thread.
#[derive(Debug, Default)]
pub struct StdLock<T>(std::sync::RwLock<T>);

impl<T> SharedLock<T> for StdLock<T> {
    type ReadGuard<'a>
        = std::sync::RwLockReadGuard<'a, T>
    where
        Self: 'a;
    type WriteGuard<'a>
        = std::sync::RwLockWriteGuard<'a, T>
    where
        Self: 'a;

    #[inline]
    fn new(v: T) -> Self {
        Self(std::sync::RwLock::new(v))
    }
    #[inline]
    fn read(&self) -> Self::ReadGuard<'_> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }
    #[inline]
    fn write(&self) -> Self::WriteGuard<'_> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Prims for StdPrims {
    type AUsize = std::sync::atomic::AtomicUsize;
    type AU64 = std::sync::atomic::AtomicU64;
    type Cell<T> = StdCell<T>;
    type Lock<T> = StdLock<T>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_atomics_forward() {
        let a = <StdPrims as Prims>::AU64::new(5);
        assert_eq!(a.load(Ordering::Relaxed), 5);
        a.store(9, Ordering::Release);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 9);
        assert_eq!(a.load(Ordering::Acquire), 10);
        let u = <StdPrims as Prims>::AUsize::new(1);
        assert_eq!(u.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(u.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn std_cell_pointer_identity() {
        // This crate forbids unsafe, so the test cannot dereference the raw
        // pointers the cell hands out; it pins the address contract instead
        // (callers rely on both closures seeing the same stable location).
        let c: StdCell<u32> = RawCell::new(7);
        let shared = c.with(|p| p as usize);
        let exclusive = c.with_mut(|p| p as usize);
        assert_eq!(shared, exclusive);
        assert_eq!(c.with(|p| p as usize), shared);
    }

    #[test]
    fn std_lock_read_write() {
        let l: StdLock<Vec<u32>> = SharedLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().as_slice(), &[1, 2]);
    }
}
