//! The NetMedic ranking: abnormality × strongest dependency path.

use crate::state::History;
use nf_types::{NfId, NodeId, Topology};

/// NetMedic configuration.
#[derive(Debug, Clone)]
pub struct NetMedicConfig {
    /// Correlation window length (the paper sweeps 1–100 ms; 10 ms is the
    /// best-performing value in §6.2).
    pub window_ns: u64,
    /// How many most-similar historical windows back each edge weight.
    pub similar_k: usize,
}

impl Default for NetMedicConfig {
    fn default() -> Self {
        Self {
            window_ns: 10 * nf_types::MILLIS,
            similar_k: 5,
        }
    }
}

/// One ranked culprit candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedComponent {
    /// The component (source or NF).
    pub node: NodeId,
    /// NetMedic score (higher = more likely culprit).
    pub score: f64,
}

/// The NetMedic diagnosis engine for one topology.
///
/// Component indexing convention: component `0` is the traffic source,
/// component `i + 1` is `NfId(i)`. Histories passed to
/// [`NetMedic::diagnose`] must follow it.
pub struct NetMedic {
    topology: Topology,
    cfg: NetMedicConfig,
}

impl NetMedic {
    /// Creates the engine.
    pub fn new(topology: Topology, cfg: NetMedicConfig) -> Self {
        Self { topology, cfg }
    }

    /// The configured window size.
    pub fn window_ns(&self) -> u64 {
        self.cfg.window_ns
    }

    /// Component index of a node.
    pub fn component_of(node: NodeId) -> usize {
        match node {
            NodeId::Source => 0,
            NodeId::Nf(id) => id.0 as usize + 1,
        }
    }

    /// Node of a component index.
    pub fn node_of(c: usize) -> NodeId {
        if c == 0 {
            NodeId::Source
        } else {
            NodeId::Nf(NfId((c - 1) as u16))
        }
    }

    /// Edge weight `src → dst` at window `w`: find the `similar_k`
    /// historical windows where `src` was most similar to its state at `w`,
    /// and average `dst`'s similarity between those windows and `w`.
    fn edge_weight(&self, hist: &History, src: usize, dst: usize, w: usize) -> f64 {
        let n = hist.windows();
        if n <= 1 {
            return 0.0;
        }
        let mut sims: Vec<(f64, usize)> = (0..n)
            .filter(|&h| h != w)
            .map(|h| (hist.similarity(src, h, w), h))
            .collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite sims"));
        let k = self.cfg.similar_k.min(sims.len());
        if k == 0 {
            return 0.0;
        }
        // "When src looked like now, did dst look like now too?" — high
        // average similarity means src's state plausibly explains dst's.
        sims[..k]
            .iter()
            .map(|&(_, h)| hist.similarity(dst, h, w))
            .sum::<f64>()
            / k as f64
    }

    /// Ranks culprit components for a victim at NF `victim_nf` observed at
    /// time `victim_ts`.
    pub fn diagnose(
        &self,
        hist: &History,
        victim_nf: NfId,
        victim_ts: u64,
    ) -> Vec<RankedComponent> {
        let w = hist.window_of(victim_ts);
        let n_comp = hist.components();
        let victim_c = Self::component_of(NodeId::Nf(victim_nf));

        // Strongest dependency-path weight from every component to the
        // victim, via DP over the DAG (edges: source→entries, NF→NF).
        let mut path = vec![0.0f64; n_comp];
        if victim_c < n_comp {
            path[victim_c] = 1.0;
        }
        // Process NFs in reverse topological order so downstream values are
        // final before upstream reads them.
        for &nf in self.topology.topo_order().iter().rev() {
            let c = Self::component_of(NodeId::Nf(nf));
            if c >= n_comp {
                continue;
            }
            for &down in self.topology.downstream(nf) {
                let d = Self::component_of(NodeId::Nf(down));
                if d >= n_comp || path[d] <= 0.0 {
                    continue;
                }
                let wgt = self.edge_weight(hist, c, d, w) * path[d];
                if wgt > path[c] {
                    path[c] = wgt;
                }
            }
        }
        // Source.
        for &entry in self.topology.entries() {
            let e = Self::component_of(NodeId::Nf(entry));
            if e >= n_comp || path[e] <= 0.0 {
                continue;
            }
            let wgt = self.edge_weight(hist, 0, e, w) * path[e];
            if wgt > path[0] {
                path[0] = wgt;
            }
        }

        let mut ranked: Vec<RankedComponent> = (0..n_comp)
            .map(|c| RankedComponent {
                node: Self::node_of(c),
                score: hist.abnormality(c, w) * path[c],
            })
            .collect();
        ranked.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ComponentState, Metric};
    use nf_types::NfKind;

    /// source -> nat -> vpn chain, components [source, nat, vpn].
    fn topo() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, v);
        b.build().unwrap()
    }

    /// History where the NAT's CPU spikes in window 5 and the VPN's queue
    /// spikes in the SAME window (temporally correlated).
    fn correlated_history() -> History {
        let states = (0..10)
            .map(|w| {
                let nat_cpu = if w == 5 { 1.0 } else { 0.3 };
                let vpn_q = if w == 5 { 400.0 } else { 5.0 };
                vec![
                    ComponentState::default().with(Metric::OutputRate, 1000.0),
                    ComponentState::default()
                        .with(Metric::CpuUtil, nat_cpu)
                        .with(Metric::InputRate, 1000.0),
                    ComponentState::default()
                        .with(Metric::QueueLen, vpn_q)
                        .with(Metric::InputRate, 1000.0),
                ]
            })
            .collect();
        History::new(10_000_000, states)
    }

    #[test]
    fn correlated_upstream_abnormality_ranks_first() {
        let t = topo();
        let nm = NetMedic::new(t.clone(), NetMedicConfig::default());
        let hist = correlated_history();
        let vpn = t.by_name("vpn1").unwrap();
        // Victim in window 5 (t = 55 ms).
        let ranked = nm.diagnose(&hist, vpn, 55_000_000);
        assert_eq!(ranked.len(), 3);
        // NAT (abnormal + correlated) or VPN (abnormal itself) on top;
        // the source (quiet) must rank last.
        assert_ne!(ranked[0].node, NodeId::Source);
        assert_eq!(ranked[2].node, NodeId::Source);
        let nat_rank = ranked
            .iter()
            .position(|r| r.node == NodeId::Nf(NfId(0)))
            .unwrap();
        assert!(nat_rank <= 1, "NAT ranked {nat_rank}: {ranked:?}");
    }

    /// The failure mode the paper exploits: the NAT stalls in window 2 but
    /// the VPN's queue only spikes in window 5 (delayed impact) — with
    /// window-based correlation the NAT no longer looks abnormal *in the
    /// victim's window*, so NetMedic misses it.
    #[test]
    fn delayed_impact_defeats_time_correlation() {
        let t = topo();
        let nm = NetMedic::new(t.clone(), NetMedicConfig::default());
        let states = (0..10)
            .map(|w| {
                let nat_cpu = if w == 2 { 1.0 } else { 0.3 };
                let vpn_q = if w == 5 { 400.0 } else { 5.0 };
                vec![
                    ComponentState::default().with(Metric::OutputRate, 1000.0),
                    ComponentState::default().with(Metric::CpuUtil, nat_cpu),
                    ComponentState::default().with(Metric::QueueLen, vpn_q),
                ]
            })
            .collect();
        let hist = History::new(10_000_000, states);
        let vpn = t.by_name("vpn1").unwrap();
        let ranked = nm.diagnose(&hist, vpn, 55_000_000);
        // The true culprit (NAT) is NOT first — the victim NF blames itself.
        assert_ne!(ranked[0].node, NodeId::Nf(NfId(0)));
    }

    #[test]
    fn component_index_round_trip() {
        assert_eq!(NetMedic::component_of(NodeId::Source), 0);
        assert_eq!(NetMedic::component_of(NodeId::Nf(NfId(3))), 4);
        assert_eq!(NetMedic::node_of(0), NodeId::Source);
        assert_eq!(NetMedic::node_of(4), NodeId::Nf(NfId(3)));
    }

    #[test]
    fn every_component_gets_a_rank() {
        // §6.2: "NetMedic still gives it a rank because it gives every
        // possible culprit a rank".
        let t = topo();
        let nm = NetMedic::new(t.clone(), NetMedicConfig::default());
        let ranked = nm.diagnose(&correlated_history(), t.by_name("vpn1").unwrap(), 0);
        assert_eq!(ranked.len(), 3);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::state::{ComponentState, Metric};
    use nf_types::NfKind;

    fn diamond() -> Topology {
        // source -> a,b -> v : two parallel upstreams.
        let mut t = Topology::builder();
        let a = t.add_nf(NfKind::Nat, "a");
        let b = t.add_nf(NfKind::Nat, "b");
        let v = t.add_nf(NfKind::Vpn, "v");
        t.add_entry(a);
        t.add_entry(b);
        t.add_edge(a, v);
        t.add_edge(b, v);
        t.build().unwrap()
    }

    /// History where only component `hot` spikes in window `w`.
    fn spike(n_comp: usize, hot: usize, w: usize) -> History {
        let states = (0..10)
            .map(|win| {
                (0..n_comp)
                    .map(|c| {
                        let v = if c == hot && win == w { 1.0 } else { 0.2 };
                        ComponentState::default()
                            .with(Metric::CpuUtil, v)
                            .with(Metric::InputRate, 100.0)
                    })
                    .collect()
            })
            .collect();
        History::new(10_000_000, states)
    }

    #[test]
    fn abnormal_parallel_upstream_outranks_quiet_one() {
        let t = diamond();
        let nm = NetMedic::new(t.clone(), NetMedicConfig::default());
        // Component indices: 0 source, 1 a, 2 b, 3 v. Make `a` spike in the
        // victim's window.
        let hist = spike(4, 1, 6);
        let ranked = nm.diagnose(&hist, t.by_name("v").unwrap(), 65_000_000);
        let pos_a = ranked
            .iter()
            .position(|r| r.node == NodeId::Nf(NfId(0)))
            .unwrap();
        let pos_b = ranked
            .iter()
            .position(|r| r.node == NodeId::Nf(NfId(1)))
            .unwrap();
        assert!(pos_a < pos_b, "{ranked:?}");
    }

    #[test]
    fn disconnected_component_scores_zero() {
        // b has no path to a — diagnosing a victim at `a` must give b a
        // zero path weight.
        let mut t = Topology::builder();
        let a = t.add_nf(NfKind::Nat, "a");
        let _b = t.add_nf(NfKind::Nat, "b");
        t.add_entry(a);
        let topo = t.build().unwrap();
        let nm = NetMedic::new(topo, NetMedicConfig::default());
        let hist = spike(3, 2, 5); // b spikes
        let ranked = nm.diagnose(&hist, a, 55_000_000);
        let b_score = ranked
            .iter()
            .find(|r| r.node == NodeId::Nf(NfId(1)))
            .unwrap()
            .score;
        assert_eq!(b_score, 0.0);
    }

    #[test]
    fn window_size_changes_the_verdict() {
        // The same data at a larger window dilutes a short spike.
        let t = diamond();
        let hist_small = spike(4, 1, 6);
        let nm = NetMedic::new(
            t.clone(),
            NetMedicConfig {
                window_ns: 10_000_000,
                similar_k: 5,
            },
        );
        let r_small = nm.diagnose(&hist_small, t.by_name("v").unwrap(), 65_000_000);
        // Build the "same" signal averaged 5x (window 50 ms -> 2 windows).
        let states = (0..2)
            .map(|win| {
                (0..4)
                    .map(|c| {
                        let v = if c == 1 && win == 1 { 0.36 } else { 0.2 }; // 1.0 diluted 5:1
                        ComponentState::default().with(Metric::CpuUtil, v)
                    })
                    .collect()
            })
            .collect();
        let hist_big = History::new(50_000_000, states);
        let nm_big = NetMedic::new(
            t.clone(),
            NetMedicConfig {
                window_ns: 50_000_000,
                similar_k: 5,
            },
        );
        let r_big = nm_big.diagnose(&hist_big, t.by_name("v").unwrap(), 65_000_000);
        let score_small = r_small
            .iter()
            .find(|r| r.node == NodeId::Nf(NfId(0)))
            .unwrap()
            .score;
        let score_big = r_big
            .iter()
            .find(|r| r.node == NodeId::Nf(NfId(0)))
            .unwrap()
            .score;
        assert!(score_small >= score_big, "{score_small} vs {score_big}");
    }
}
