//! Per-window component state vectors and the run history.

use nf_types::Nanos;
use serde::{Deserialize, Serialize};

/// The monitored variables of one component, one slot each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// CPU utilisation in [0, 1].
    CpuUtil = 0,
    /// Input packet rate (pps).
    InputRate = 1,
    /// Output/processing rate (pps).
    OutputRate = 2,
    /// Mean queue occupancy (packets).
    QueueLen = 3,
    /// Packets dropped in the window.
    Drops = 4,
}

/// Number of metrics per component.
pub const METRIC_COUNT: usize = 5;

/// One component's state in one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentState {
    /// Metric values, indexed by [`Metric`].
    pub values: [f64; METRIC_COUNT],
}

impl Default for ComponentState {
    fn default() -> Self {
        Self {
            values: [0.0; METRIC_COUNT],
        }
    }
}

impl ComponentState {
    /// Sets one metric (builder style).
    pub fn with(mut self, m: Metric, v: f64) -> Self {
        self.values[m as usize] = v;
        self
    }

    /// Reads one metric.
    pub fn get(&self, m: Metric) -> f64 {
        self.values[m as usize]
    }
}

/// The full history of a run: `states[window][component]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct History {
    /// Window length in nanoseconds.
    pub window_ns: Nanos,
    /// Per window, per component state.
    pub states: Vec<Vec<ComponentState>>,
    /// Per-component per-metric value ranges (for normalised similarity).
    ranges: Vec<[(f64, f64); METRIC_COUNT]>,
}

impl History {
    /// Builds a history from raw per-window states.
    pub fn new(window_ns: Nanos, states: Vec<Vec<ComponentState>>) -> Self {
        assert!(window_ns > 0, "window must be positive");
        let n_comp = states.first().map_or(0, |w| w.len());
        assert!(
            states.iter().all(|w| w.len() == n_comp),
            "ragged state matrix"
        );
        let mut ranges = vec![[(f64::INFINITY, f64::NEG_INFINITY); METRIC_COUNT]; n_comp];
        for w in &states {
            for (c, s) in w.iter().enumerate() {
                for (m, &v) in s.values.iter().enumerate() {
                    ranges[c][m].0 = ranges[c][m].0.min(v);
                    ranges[c][m].1 = ranges[c][m].1.max(v);
                }
            }
        }
        Self {
            window_ns,
            states,
            ranges,
        }
    }

    /// Number of windows.
    pub fn windows(&self) -> usize {
        self.states.len()
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.states.first().map_or(0, |w| w.len())
    }

    /// The window index containing time `t` (clamped to the last window).
    pub fn window_of(&self, t: Nanos) -> usize {
        ((t / self.window_ns) as usize).min(self.windows().saturating_sub(1))
    }

    /// NetMedic state similarity of component `c` between windows `a` and
    /// `b`: `1 − mean_i(|x_i − y_i| / range_i)`, in [0, 1].
    pub fn similarity(&self, c: usize, a: usize, b: usize) -> f64 {
        let sa = &self.states[a][c];
        let sb = &self.states[b][c];
        let mut acc = 0.0;
        for m in 0..METRIC_COUNT {
            let (lo, hi) = self.ranges[c][m];
            let range = (hi - lo).max(f64::EPSILON);
            acc += (sa.values[m] - sb.values[m]).abs() / range;
        }
        (1.0 - acc / METRIC_COUNT as f64).clamp(0.0, 1.0)
    }

    /// Abnormality of component `c` in window `w`: the largest normalised
    /// deviation of any metric from its median over the whole history.
    pub fn abnormality(&self, c: usize, w: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for m in 0..METRIC_COUNT {
            let (lo, hi) = self.ranges[c][m];
            let range = (hi - lo).max(f64::EPSILON);
            let mut vals: Vec<f64> = self.states.iter().map(|win| win[c].values[m]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
            let median = vals[vals.len() / 2];
            let dev = (self.states[w][c].values[m] - median).abs() / range;
            worst = worst.max(dev);
        }
        worst.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> History {
        // 1 component, 5 windows: queue length spikes in window 3.
        let states = (0..5)
            .map(|w| {
                vec![ComponentState::default()
                    .with(Metric::QueueLen, if w == 3 { 100.0 } else { 1.0 })
                    .with(Metric::InputRate, 50.0)]
            })
            .collect();
        History::new(1_000_000, states)
    }

    #[test]
    fn window_of_maps_and_clamps() {
        let h = hist();
        assert_eq!(h.window_of(0), 0);
        assert_eq!(h.window_of(3_500_000), 3);
        assert_eq!(h.window_of(99_000_000), 4);
    }

    #[test]
    fn similarity_is_one_for_identical_states() {
        let h = hist();
        assert!((h.similarity(0, 0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_drops_for_the_spike_window() {
        let h = hist();
        assert!(h.similarity(0, 0, 3) < 0.9);
    }

    #[test]
    fn abnormality_flags_the_spike() {
        let h = hist();
        assert!(h.abnormality(0, 3) > 0.9);
        assert!(h.abnormality(0, 1) < 0.1);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        History::new(1_000, vec![vec![ComponentState::default()], vec![]]);
    }
}
