//! Baselines for the evaluation: a NetMedic-style time-window correlation
//! tool (the paper's main comparison) and a PerfSight-style persistent-
//! bottleneck analyser ([`perfsight`], the §8 contrast for transient vs
//! persistent problems).
//!
//! A NetMedic-style time-window correlation baseline (Kandula et al.,
//! SIGCOMM 2009), adapted to NF chains exactly as §6.1 of the Microscope
//! paper describes: components are NF instances (plus the traffic source),
//! edges follow the NF DAG, and each component exposes per-window resource
//! and traffic variables (CPU use, input/output rates, queue length,
//! drops).
//!
//! The diagnosis is history-based correlation:
//!
//! * a component is *abnormal* in a window when a variable deviates from its
//!   own history;
//! * the weight of edge `S → D` "now" is computed by finding the historical
//!   windows where `S` looked most like it does now and checking whether
//!   `D` also looked like it does now (if yes, `S`'s state plausibly
//!   explains `D`'s);
//! * a culprit's score for a victim component is its abnormality times the
//!   strongest product-of-edge-weights path to the victim.
//!
//! Its fundamental limitation — the reason Microscope beats it in the
//! paper — is the fixed time window: microsecond-scale events whose impact
//! propagates milliseconds later (Fig. 15) fall outside any single good
//! window size.

#![forbid(unsafe_code)]

pub mod diagnose;
pub mod perfsight;
pub mod state;

pub use diagnose::{NetMedic, NetMedicConfig, RankedComponent};
pub use perfsight::{Bottleneck, ElementCounters, PerfSight, PerfSightConfig};
pub use state::{ComponentState, History, Metric, METRIC_COUNT};
