//! A PerfSight-style baseline (Wu et al., IMC 2015) for *persistent*
//! dataplane problems.
//!
//! The Microscope paper positions PerfSight as the tool for long-lived
//! bottlenecks: it instruments packet counters (input, output, drops) per
//! dataplane element and localises the element that persistently loses or
//! throttles traffic. It has no notion of queuing periods or propagation,
//! so transient tail problems are invisible to it — the contrast §8 draws
//! and the `baseline_perfsight` experiment demonstrates.

use nf_types::{Nanos, NfId, Topology};
use serde::{Deserialize, Serialize};

/// The per-element counters PerfSight collects (a strict subset of what a
/// real dataplane exposes; the simulator's `NfStats` maps 1:1).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ElementCounters {
    /// Packets read and processed.
    pub processed: u64,
    /// Packets dropped at the element's input.
    pub dropped: u64,
    /// Busy time in nanoseconds.
    pub busy_ns: Nanos,
}

/// One diagnosed bottleneck.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// The element.
    pub nf: NfId,
    /// Fraction of its offered packets it dropped.
    pub drop_rate: f64,
    /// Busy fraction over the observation window.
    pub utilisation: f64,
    /// Combined severity score used for ranking.
    pub score: f64,
}

/// PerfSight configuration.
#[derive(Debug, Clone)]
pub struct PerfSightConfig {
    /// Utilisation above which an element counts as a persistent bottleneck
    /// even without drops.
    pub utilisation_threshold: f64,
    /// Drop rate above which an element is flagged regardless of load.
    pub drop_threshold: f64,
}

impl Default for PerfSightConfig {
    fn default() -> Self {
        Self {
            utilisation_threshold: 0.95,
            drop_threshold: 1e-4,
        }
    }
}

/// The PerfSight-style analyser.
pub struct PerfSight {
    cfg: PerfSightConfig,
}

impl PerfSight {
    /// Creates the analyser.
    pub fn new(cfg: PerfSightConfig) -> Self {
        Self { cfg }
    }

    /// Ranks elements by persistent-bottleneck severity from whole-run
    /// counters. Elements below both thresholds are not reported at all —
    /// faithfully modelling why transient problems slip through: averaged
    /// over the run, a 1 ms stall moves no counter visibly.
    pub fn diagnose(
        &self,
        _topology: &Topology,
        counters: &[ElementCounters],
        duration: Nanos,
    ) -> Vec<Bottleneck> {
        let mut out: Vec<Bottleneck> = counters
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let offered = c.processed + c.dropped;
                if offered == 0 {
                    return None;
                }
                let drop_rate = c.dropped as f64 / offered as f64;
                let utilisation = if duration == 0 {
                    0.0
                } else {
                    (c.busy_ns as f64 / duration as f64).min(1.0)
                };
                if drop_rate < self.cfg.drop_threshold
                    && utilisation < self.cfg.utilisation_threshold
                {
                    return None;
                }
                Some(Bottleneck {
                    nf: NfId(i as u16),
                    drop_rate,
                    utilisation,
                    // Drops dominate; utilisation breaks ties among
                    // saturated elements.
                    score: drop_rate * 1e3 + utilisation,
                })
            })
            .collect();
        out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_types::NfKind;

    fn topo3() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_nf(NfKind::Nat, "nat1");
        let f = b.add_nf(NfKind::Firewall, "fw1");
        let v = b.add_nf(NfKind::Vpn, "vpn1");
        b.add_entry(a);
        b.add_edge(a, f);
        b.add_edge(f, v);
        b.build().unwrap()
    }

    #[test]
    fn persistent_overload_is_found() {
        let t = topo3();
        let counters = vec![
            ElementCounters {
                processed: 1_000_000,
                dropped: 0,
                busy_ns: 300_000_000,
            },
            ElementCounters {
                processed: 1_000_000,
                dropped: 0,
                busy_ns: 400_000_000,
            },
            // The VPN drops 10% and is pegged.
            ElementCounters {
                processed: 900_000,
                dropped: 100_000,
                busy_ns: 999_000_000,
            },
        ];
        let ps = PerfSight::new(PerfSightConfig::default());
        let found = ps.diagnose(&t, &counters, 1_000_000_000);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].nf, NfId(2));
        assert!((found[0].drop_rate - 0.1).abs() < 1e-9);
        assert!(found[0].utilisation > 0.95);
    }

    #[test]
    fn transient_problem_is_invisible() {
        // A 1 ms interrupt in a 1 s run: utilisation barely moves, no
        // drops — PerfSight reports nothing (the paper's point).
        let t = topo3();
        let counters = vec![
            ElementCounters {
                processed: 1_000_000,
                dropped: 0,
                busy_ns: 301_000_000,
            },
            ElementCounters {
                processed: 1_000_000,
                dropped: 0,
                busy_ns: 400_000_000,
            },
            ElementCounters {
                processed: 1_000_000,
                dropped: 0,
                busy_ns: 790_000_000,
            },
        ];
        let ps = PerfSight::new(PerfSightConfig::default());
        assert!(ps.diagnose(&t, &counters, 1_000_000_000).is_empty());
    }

    #[test]
    fn droppier_element_ranks_first() {
        let t = topo3();
        let counters = vec![
            ElementCounters {
                processed: 990_000,
                dropped: 10_000,
                busy_ns: 500_000_000,
            },
            ElementCounters {
                processed: 900_000,
                dropped: 100_000,
                busy_ns: 500_000_000,
            },
            ElementCounters {
                processed: 0,
                dropped: 0,
                busy_ns: 0,
            },
        ];
        let ps = PerfSight::new(PerfSightConfig::default());
        let found = ps.diagnose(&t, &counters, 1_000_000_000);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].nf, NfId(1));
        assert_eq!(found[1].nf, NfId(0));
    }

    #[test]
    fn idle_elements_are_skipped() {
        let t = topo3();
        let counters = vec![ElementCounters::default(); 3];
        let ps = PerfSight::new(PerfSightConfig::default());
        assert!(ps.diagnose(&t, &counters, 1_000_000_000).is_empty());
    }
}
